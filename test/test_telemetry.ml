(* Tests for Pgrid_telemetry: metrics registry, ring buffer, event JSON
   round trip, JSONL sink, and consistency of the events emitted by a
   full network-engine run against the engine's own counters. *)

module Rng = Pgrid_prng.Rng
module Distribution = Pgrid_workload.Distribution
module Net_engine = Pgrid_construction.Net_engine
module Engine = Pgrid_construction.Engine
module Event = Pgrid_telemetry.Event
module Metrics = Pgrid_telemetry.Metrics
module Ring = Pgrid_telemetry.Ring
module Sink = Pgrid_telemetry.Sink
module Telemetry = Pgrid_telemetry.Telemetry
module Summary = Pgrid_telemetry.Summary

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let close ?(eps = 1e-9) msg a b = Alcotest.check (Alcotest.float eps) msg a b

(* --- Metrics ------------------------------------------------------------ *)

let test_metrics_counter () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  checki "count" 42 (Metrics.counter_value c);
  (* same name resolves to the same cell *)
  Metrics.incr (Metrics.counter m "a");
  checki "shared" 43 (Metrics.counter_value c);
  Alcotest.check
    Alcotest.(list (pair string int))
    "snapshot" [ ("a", 43) ] (Metrics.counters m)

let test_metrics_gauge () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "depth" in
  close "initial" 0. (Metrics.gauge_value g);
  Metrics.set_gauge g 3.5;
  close "set" 3.5 (Metrics.gauge_value g)

let test_metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 1.6; 25. (* clamps *) ];
  let moments = Metrics.histogram_moments h in
  checki "observations" 4 (Pgrid_stats.Moments.count moments);
  close "mean keeps exact values" ((0.5 +. 1.5 +. 1.6 +. 25.) /. 4.)
    (Pgrid_stats.Moments.mean moments);
  (* re-registration returns the same histogram, ignoring new bounds *)
  Metrics.observe (Metrics.histogram m "lat" ~lo:0. ~hi:1. ~bins:2) 2.;
  checki "shared" 5 (Pgrid_stats.Moments.count (Metrics.histogram_moments h))

let test_metrics_kind_clash () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  checkb "gauge over counter raises" true
    (try
       ignore (Metrics.gauge m "x");
       false
     with Invalid_argument _ -> true)

(* --- Ring --------------------------------------------------------------- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:4 in
  checki "empty" 0 (Ring.length r);
  Ring.add r 1;
  Ring.add r 2;
  Alcotest.(check (list int)) "partial" [ 1; 2 ] (Ring.to_list r)

let test_ring_wraparound () =
  let r = Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Ring.add r i
  done;
  checki "length capped" 4 (Ring.length r);
  checki "added" 10 (Ring.added r);
  checki "dropped" 6 (Ring.dropped r);
  Alcotest.(check (list int)) "keeps newest, oldest first" [ 7; 8; 9; 10 ]
    (Ring.to_list r);
  Ring.clear r;
  checki "cleared" 0 (Ring.length r);
  Ring.add r 11;
  Alcotest.(check (list int)) "usable after clear" [ 11 ] (Ring.to_list r)

let test_ring_invalid () =
  checkb "capacity 0 raises" true
    (try
       ignore (Ring.create ~capacity:0);
       false
     with Invalid_argument _ -> true)

(* --- Event JSON --------------------------------------------------------- *)

let sample_events =
  [
    Event.Interaction { src = 3; dst = 7 };
    Event.Refer { src = 1; dst = 2; level = 4 };
    Event.Split { a = 0; b = 9; level = 2 };
    Event.Follow { peer = 5; level = 1 };
    Event.Replicate { a = 4; b = 6 };
    Event.Descent { a = 2; b = 3; level = 0 };
    Event.Key_move { src = 8; dst = 1 };
    Event.Msg_send { src = 1; dst = 2; bytes = 180; traffic = Event.Maintenance };
    Event.Msg_send { src = -1; dst = -1; bytes = 40; traffic = Event.Query };
    Event.Msg_recv { src = 1; dst = 2 };
    Event.Msg_drop { src = 2; dst = 1 };
    Event.Query_issue { qid = 17; origin = 3 };
    Event.Query_hop { qid = 17; src = 3; dst = 9 };
    Event.Query_complete
      { qid = 17; origin = 3; hops = 2; latency = 0.731; success = true };
    Event.Query_complete
      { qid = 18; origin = 4; hops = 0; latency = 0.; success = false };
    Event.Churn_offline { peer = 12 };
    Event.Churn_online { peer = 12 };
    Event.Peer_leave { peer = 7; pushed = 30 };
    Event.Peer_join { peer = 7; hops = 3 };
    Event.Repair { dropped = 2; added = 5; unfixable = 1 };
    Event.Rebalance { migrations = 4; rounds = 2 };
    Event.Fault_on { fault = "burst"; node = 5 };
    Event.Fault_off { fault = "partition"; node = -1 };
    Event.Timeout { rid = 42; src = 1; dst = 9; attempt = 0 };
    Event.Retry { rid = 42; src = 1; dst = 9; attempt = 1 };
    Event.Give_up { rid = 42; src = 1 };
    Event.Ref_evict { peer = 3; level = 2; target = 11 };
    Event.Health_report
      {
        ref_integrity = 1;
        trie_incomplete = 0;
        under_replicated = 3;
        at_risk = 7;
        torn = 0;
        lost = 0;
        score = 0.875;
      };
    Event.Anti_entropy { a = 4; b = 11; copied = 3 };
    Event.Re_replicate { path = "0110"; peer = 23 };
    Event.Balance_split { path = "010"; level = 3; zeros = 6; ones = 5 };
    Event.Retract { path = "0111"; members = 9; merged_keys = 14 };
    Event.Migrate { peer = 31; level = 3; keys = 12 };
    Event.Balance_pass { max_load = 42; splits = 2; retracts = 1 };
    Event.Txn_begin { txn = 7; coordinator = 3; ops = 4 };
    Event.Txn_prepare { txn = 7; peer = 19 };
    Event.Txn_commit { txn = 7 };
    Event.Txn_abort { txn = 8 };
    Event.Txn_recover { txn = 8; peer = 19; committed = false };
    Event.Msg_shed { src = 4; dst = 7; traffic = Event.Query; backlog = 16 };
    Event.Breaker_open { origin = 3; target = 9; failures = 5 };
    Event.Breaker_close { origin = 3; target = 9 };
    Event.Hedge_launch { qid = 17; origin = 3; primary = 9; backup = 11 };
    Event.Hedge_win { qid = 17; origin = 3; backup_won = true };
    Event.Partition_heal { fault = "partition"; cut = 512 };
    Event.Reconcile_sync { a = 4; b = 9; copied = 3; tombstoned = 1 };
    Event.Reconcile_gc { peer = -1; purged = 7 };
    Event.Reconcile_repair { path = "01"; demoted = 2; moved = 5 };
    Event.Cache_hit { peer = 4; cache = Event.Route };
    Event.Cache_hit { peer = 4; cache = Event.Result };
    Event.Cache_miss { peer = 7 };
    Event.Cache_stale { peer = 4; target = 12 };
    Event.Cache_invalidate { peer = 12; reason = "migrate" };
  ]
  |> List.mapi (fun i kind ->
         { Event.time = (float_of_int i *. 0.1) +. (1. /. 3.); kind })

let test_event_json_roundtrip () =
  List.iter
    (fun ev ->
      let line = Event.to_json ev in
      match Event.of_json line with
      | Error reason -> Alcotest.failf "%s: %s" line reason
      | Ok ev' ->
        checkb (Printf.sprintf "round trip %s" line) true (Event.equal ev ev'))
    sample_events

let test_event_json_errors () =
  List.iter
    (fun line ->
      checkb (Printf.sprintf "rejects %s" line) true
        (Result.is_error (Event.of_json line)))
    [
      "";
      "not json";
      "{}";
      {|{"t":1.0}|};
      {|{"t":1.0,"ev":"no_such_event"}|};
      {|{"t":1.0,"ev":"split","a":1,"b":2}|} (* missing level *);
      {|{"ev":"interaction","src":1,"dst":2}|} (* missing time *);
    ]

let test_event_tags () =
  checki "tag_count" Event.tag_count
    (List.length
       (List.sort_uniq compare
          (List.map (fun e -> Event.tag e.Event.kind) sample_events)));
  List.iter
    (fun e ->
      Alcotest.(check string)
        "label_of_tag inverts tag" (Event.label e.Event.kind)
        (Event.label_of_tag (Event.tag e.Event.kind)))
    sample_events

(* --- Sinks and handle --------------------------------------------------- *)

let test_jsonl_sink_roundtrip () =
  let path = Filename.temp_file "pgrid_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Sink.jsonl_file path in
      List.iter (Sink.emit sink) sample_events;
      checki "lines written" (List.length sample_events) (Sink.lines_written sink);
      Sink.close sink;
      match Sink.read_jsonl path with
      | Error (line, reason) -> Alcotest.failf "line %d: %s" line reason
      | Ok events ->
        checki "count" (List.length sample_events) (List.length events);
        List.iter2
          (fun a b -> checkb "event preserved" true (Event.equal a b))
          sample_events events)

let test_jsonl_bad_line () =
  let path = Filename.temp_file "pgrid_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        ({|{"t":1,"ev":"interaction","src":1,"dst":2}|} ^ "\n\ngarbage\n");
      close_out oc;
      match Sink.read_jsonl path with
      | Ok _ -> Alcotest.fail "garbage accepted"
      | Error (line, _) -> checki "blank lines skipped, error on line 3" 3 line)

let test_handle_aggregates () =
  let now = ref 0. in
  let tel = Telemetry.create ~clock:(fun () -> !now) () in
  let ring = Ring.create ~capacity:8 in
  Telemetry.add_sink tel (Sink.ring ring);
  now := 1.5;
  Telemetry.emit tel (Event.Interaction { src = 0; dst = 1 });
  Telemetry.emit tel (Event.Msg_send { src = 0; dst = 1; bytes = 100; traffic = Event.Maintenance });
  Telemetry.emit tel (Event.Msg_send { src = 1; dst = 0; bytes = 25; traffic = Event.Query });
  Telemetry.emit tel
    (Event.Query_complete { qid = 1; origin = 0; hops = 3; latency = 0.5; success = true });
  Telemetry.emit tel
    (Event.Query_complete { qid = 2; origin = 0; hops = 9; latency = 9.; success = false });
  checki "events recorded" 5 (Telemetry.events_recorded tel);
  checki "per-kind count" 2
    (Telemetry.count_of_tag tel (Event.tag (Event.Query_complete { qid = 0; origin = 0; hops = 0; latency = 0.; success = true })));
  let metrics = Metrics.counters (Telemetry.metrics tel) in
  checki "maintenance bytes" 100 (List.assoc "net.bytes.maintenance" metrics);
  checki "query bytes" 25 (List.assoc "net.bytes.query" metrics);
  (* only successful queries feed the latency/hops histograms *)
  let hist = List.assoc "query.latency_s" (Metrics.histograms (Telemetry.metrics tel)) in
  checki "latency observations" 1 (Pgrid_stats.Moments.count (Metrics.histogram_moments hist));
  (match Ring.to_list ring with
  | { Event.time; _ } :: _ -> close "clock stamps events" 1.5 time
  | [] -> Alcotest.fail "ring empty");
  checki "ring saw everything" 5 (Ring.length ring)

let test_overload_gauges () =
  (* The overload event kinds fold into replayable gauges: a trace
     replayed through [record] reconstructs shed / breaker / hedge
     state without the live network. *)
  let tel = Telemetry.create () in
  let ev kind = Telemetry.emit tel kind in
  ev (Event.Msg_shed { src = 1; dst = 2; traffic = Event.Query; backlog = 6 });
  ev (Event.Msg_shed { src = 3; dst = 2; traffic = Event.Maintenance; backlog = 16 });
  ev (Event.Breaker_open { origin = 0; target = 2; failures = 5 });
  ev (Event.Breaker_open { origin = 1; target = 2; failures = 5 });
  ev (Event.Breaker_close { origin = 0; target = 2 });
  ev (Event.Hedge_launch { qid = 9; origin = 0; primary = 2; backup = 4 });
  ev (Event.Hedge_win { qid = 9; origin = 0; backup_won = true });
  let g name = List.assoc name (Metrics.gauges (Telemetry.metrics tel)) in
  close "all sheds" 2. (g "overload.sheds");
  close "query-class sheds" 1. (g "overload.sheds_query");
  close "breaker level nets opens against closes" 1. (g "overload.breakers_open");
  close "cumulative opens" 2. (g "overload.breaker_opens");
  close "hedges" 1. (g "overload.hedges");
  close "hedge wins" 1. (g "overload.hedge_wins")

let test_disabled_handle () =
  let tel = Telemetry.disabled in
  checkb "inactive" false (Telemetry.active tel);
  Telemetry.add_sink tel (Sink.ring (Ring.create ~capacity:4));
  Telemetry.set_clock tel (fun () -> 99.);
  Telemetry.emit tel (Event.Interaction { src = 0; dst = 1 });
  checki "emit is a no-op" 0 (Telemetry.events_recorded tel);
  Alcotest.(check (list pass)) "no sinks attach" [] (Telemetry.sinks tel)

let test_summary_replay () =
  let tel = Summary.replay sample_events in
  checki "all events replayed" (List.length sample_events)
    (Telemetry.events_recorded tel);
  checki "kind counts survive" 2
    (Telemetry.count_of_tag tel
       (Event.tag (Event.Msg_send { src = 0; dst = 0; bytes = 0; traffic = Event.Query })))

(* --- End to end: network engine run vs its own counters ----------------- *)

let fast_params peers =
  {
    (Net_engine.default_params ~peers) with
    Net_engine.phases =
      {
        Net_engine.join_end = 60.;
        replicate_start = 30.;
        construct_start = 60.;
        construct_end = 240.;
        query_start = 240.;
        churn_start = 300.;
        end_time = 360.;
      };
    initiate_mean = 2.;
    query_min = 5.;
    query_max = 10.;
    ping_interval = 10.;
    churn = None;
  }

let test_net_engine_consistency () =
  let tel = Telemetry.create () in
  let rng = Rng.create ~seed:15 in
  let o = Net_engine.run ~telemetry:tel rng (fast_params 32) ~spec:Distribution.Uniform in
  let c = o.Net_engine.counters in
  let count kind = Telemetry.count_of_tag tel (Event.tag kind) in
  checki "split events match engine counter" c.Engine.splits
    (count (Event.Split { a = 0; b = 0; level = 0 }));
  checki "follow events match" c.Engine.follows
    (count (Event.Follow { peer = 0; level = 0 }));
  checki "replicate events match merges" c.Engine.merges
    (count (Event.Replicate { a = 0; b = 0 }));
  checki "interaction events match" c.Engine.interactions
    (count (Event.Interaction { src = 0; dst = 0 }));
  checki "drop events match the network's counter" o.Net_engine.messages_dropped
    (count (Event.Msg_drop { src = 0; dst = 0 }));
  let issued = count (Event.Query_issue { qid = 0; origin = 0 }) in
  checki "every issued query completes" issued
    (count (Event.Query_complete { qid = 0; origin = 0; hops = 0; latency = 0.; success = true }));
  checki "queries issued match the engine's stats" o.Net_engine.query_stats.Net_engine.issued issued;
  checkb "some construction happened" true (c.Engine.splits > 0);
  checkb "simulated timestamps" true (Telemetry.events_recorded tel > 0)

let test_net_engine_trace_replay () =
  let path = Filename.temp_file "pgrid_run" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let tel = Telemetry.create () in
      Telemetry.add_sink tel (Sink.jsonl_file path);
      let rng = Rng.create ~seed:7 in
      ignore (Net_engine.run ~telemetry:tel rng (fast_params 24) ~spec:Distribution.Uniform);
      Telemetry.close tel;
      match Sink.read_jsonl path with
      | Error (line, reason) -> Alcotest.failf "line %d: %s" line reason
      | Ok events ->
        checki "every event written and parsed"
          (Telemetry.events_recorded tel) (List.length events);
        let replayed = Summary.replay events in
        for tag = 0 to Event.tag_count - 1 do
          checki
            (Printf.sprintf "replayed count for %s" (Event.label_of_tag tag))
            (Telemetry.count_of_tag tel tag)
            (Telemetry.count_of_tag replayed tag)
        done;
        checkb "timestamps are monotone (simulated clock)" true
          (fst
             (List.fold_left
                (fun (ok, prev) e -> (ok && e.Event.time >= prev, e.Event.time))
                (true, neg_infinity) events)))

let suite =
  [
    Alcotest.test_case "metrics: counter" `Quick test_metrics_counter;
    Alcotest.test_case "metrics: gauge" `Quick test_metrics_gauge;
    Alcotest.test_case "metrics: histogram" `Quick test_metrics_histogram;
    Alcotest.test_case "metrics: kind clash" `Quick test_metrics_kind_clash;
    Alcotest.test_case "ring: basics" `Quick test_ring_basic;
    Alcotest.test_case "ring: wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "ring: invalid capacity" `Quick test_ring_invalid;
    Alcotest.test_case "event: json round trip" `Quick test_event_json_roundtrip;
    Alcotest.test_case "event: json errors" `Quick test_event_json_errors;
    Alcotest.test_case "event: tags and labels" `Quick test_event_tags;
    Alcotest.test_case "sink: jsonl round trip" `Quick test_jsonl_sink_roundtrip;
    Alcotest.test_case "sink: bad line reported" `Quick test_jsonl_bad_line;
    Alcotest.test_case "handle: aggregates" `Quick test_handle_aggregates;
    Alcotest.test_case "handle: overload gauges" `Quick test_overload_gauges;
    Alcotest.test_case "handle: disabled is inert" `Quick test_disabled_handle;
    Alcotest.test_case "summary: replay" `Quick test_summary_replay;
    Alcotest.test_case "net engine: events match counters" `Slow
      test_net_engine_consistency;
    Alcotest.test_case "net engine: trace replay" `Slow test_net_engine_trace_replay;
  ]
