(* Tests for Pgrid_query: batch lookup and range measurement. *)

module Rng = Pgrid_prng.Rng
module Key = Pgrid_keyspace.Key
module Distribution = Pgrid_workload.Distribution
module Builder = Pgrid_core.Builder
module Overlay = Pgrid_core.Overlay
module Node = Pgrid_core.Node
module Query = Pgrid_query.Query

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let build seed =
  let rng = Rng.create ~seed in
  let keys = Distribution.generate rng Distribution.Uniform ~n:1500 in
  let overlay = Builder.index rng ~peers:150 ~keys ~d_max:50 ~n_min:5 ~refs_per_level:2 in
  (overlay, keys)

let test_lookup_batch () =
  let overlay, keys = build 1 in
  let rng = Rng.create ~seed:11 in
  let s = Query.lookup_batch rng overlay ~keys ~count:300 in
  checki "all issued" 300 s.Query.issued;
  checki "all routed on a healthy overlay" 300 s.Query.routed;
  checki "all found" 300 s.Query.found;
  checkb "hops positive and bounded" true (s.Query.mean_hops >= 0. && s.Query.max_hops <= 2 * Key.bits)

let test_lookup_hops_law () =
  (* The paper observes hops ~ half the trie depth. *)
  let overlay, keys = build 2 in
  let rng = Rng.create ~seed:12 in
  let s = Query.lookup_batch rng overlay ~keys ~count:500 in
  let stats = Overlay.stats overlay in
  let expectation = stats.Overlay.mean_path_length /. 2. in
  checkb "mean hops near half the path length" true
    (Float.abs (s.Query.mean_hops -. expectation) < 1.0)

let test_lookup_under_failures () =
  (* Extra reference redundancy, as a deployment under churn would use. *)
  let rng0 = Rng.create ~seed:3 in
  let all_keys = Distribution.generate rng0 Distribution.Uniform ~n:1500 in
  let overlay =
    Builder.index rng0 ~peers:150 ~keys:all_keys ~d_max:50 ~n_min:5 ~refs_per_level:4
  in
  let keys = all_keys in
  let rng = Rng.create ~seed:13 in
  for i = 0 to Overlay.size overlay - 1 do
    if Rng.float rng < 0.15 then (Overlay.node overlay i).Node.online <- false
  done;
  let s = Query.lookup_batch rng overlay ~keys ~count:300 in
  checkb "most lookups survive failures" true (s.Query.routed > 240)

let test_lookup_invalid () =
  let overlay, _ = build 4 in
  let rng = Rng.create ~seed:14 in
  Alcotest.check_raises "no keys" (Invalid_argument "Query.lookup_batch: no keys")
    (fun () -> ignore (Query.lookup_batch rng overlay ~keys:[||] ~count:5))

let test_range_batch () =
  let overlay, _ = build 5 in
  let rng = Rng.create ~seed:15 in
  let s = Query.range_batch rng overlay ~count:50 ~width:0.05 in
  checki "ranges issued" 50 s.Query.ranges;
  checkb "visits at least one partition" true (s.Query.mean_partitions >= 1.);
  (* 5% of 1500 uniform keys is about 75 results. *)
  checkb "plausible result volume" true
    (s.Query.mean_results > 40. && s.Query.mean_results < 120.)

let test_range_width_scaling () =
  let overlay, _ = build 6 in
  let rng = Rng.create ~seed:16 in
  let narrow = Query.range_batch rng overlay ~count:40 ~width:0.02 in
  let wide = Query.range_batch rng overlay ~count:40 ~width:0.2 in
  checkb "wider ranges touch more partitions" true
    (wide.Query.mean_partitions > narrow.Query.mean_partitions);
  checkb "wider ranges return more results" true
    (wide.Query.mean_results > narrow.Query.mean_results)

let test_range_invalid () =
  let overlay, _ = build 7 in
  let rng = Rng.create ~seed:17 in
  Alcotest.check_raises "zero width" (Invalid_argument "Query.range_batch: bad width")
    (fun () -> ignore (Query.range_batch rng overlay ~count:5 ~width:0.));
  Alcotest.check_raises "width above one"
    (Invalid_argument "Query.range_batch: bad width") (fun () ->
      ignore (Query.range_batch rng overlay ~count:5 ~width:1.000001))

let test_range_full_width () =
  (* width = 1.0 is a legal full scan: every range must cover the whole
     key space and return every stored key. *)
  let overlay, keys = build 10 in
  let rng = Rng.create ~seed:18 in
  let s = Query.range_batch rng overlay ~count:10 ~width:1.0 in
  checki "ranges issued" 10 s.Query.ranges;
  let distinct =
    float_of_int (List.length (List.sort_uniq Key.compare (Array.to_list keys)))
  in
  checkb "full scans return the entire key population" true
    (s.Query.mean_results >= distinct -. 0.5)

let test_conjunctive () =
  let overlay, _ = build 8 in
  let k1 = Key.of_float 0.111 and k2 = Key.of_float 0.777 in
  ignore (Overlay.insert overlay ~from:0 k1 "doc-a");
  ignore (Overlay.insert overlay ~from:0 k1 "doc-b");
  ignore (Overlay.insert overlay ~from:0 k2 "doc-b");
  ignore (Overlay.insert overlay ~from:0 k2 "doc-c");
  let r = Query.conjunctive overlay ~from:9 [ k1; k2 ] in
  Alcotest.check (Alcotest.list Alcotest.string) "intersection" [ "doc-b" ] r.Query.matches;
  checki "both resolved" 2 r.Query.resolved;
  checkb "hops accumulated" true (r.Query.total_hops >= 0)

let test_conjunctive_empty_keys () =
  let overlay, _ = build 9 in
  Alcotest.check_raises "no keys" (Invalid_argument "Query.conjunctive: no keys")
    (fun () -> ignore (Query.conjunctive overlay ~from:0 []))

(* Take every replica of [key]'s partition offline, so lookups for it
   dead-end. *)
let darken_partition overlay key =
  let origin = ref None in
  for i = 0 to Overlay.size overlay - 1 do
    let n = Overlay.node overlay i in
    if Node.responsible_for n key then n.Node.online <- false
    else if !origin = None && n.Node.online then origin := Some i
  done;
  Option.get !origin

let test_conjunctive_skips_unresolved () =
  (* Regression: an unresolved key must be skipped, not treated as an
     empty posting list that annihilates the whole intersection. *)
  let overlay, _ = build 8 in
  let k1 = Key.of_float 0.111 and k2 = Key.of_float 0.777 in
  ignore (Overlay.insert overlay ~from:0 k1 "doc-a");
  ignore (Overlay.insert overlay ~from:0 k1 "doc-b");
  ignore (Overlay.insert overlay ~from:0 k2 "doc-b");
  let from = darken_partition overlay k2 in
  let r = Query.conjunctive overlay ~from [ k1; k2 ] in
  checki "only the live key resolved" 1 r.Query.resolved;
  Alcotest.check (Alcotest.list Alcotest.string)
    "dark partition does not annihilate the intersection" [ "doc-a"; "doc-b" ]
    r.Query.matches

let test_conjunctive_all_unresolved () =
  let overlay, _ = build 9 in
  let k = Key.of_float 0.42 in
  ignore (Overlay.insert overlay ~from:0 k "doc-a");
  let from = darken_partition overlay k in
  let r = Query.conjunctive overlay ~from [ k; k ] in
  checki "nothing resolved" 0 r.Query.resolved;
  Alcotest.check (Alcotest.list Alcotest.string) "no fabricated matches" []
    r.Query.matches

let test_conjunctive_duplicate_keys () =
  (* The same key twice is idempotent: its posting list intersected with
     itself. *)
  let overlay, _ = build 8 in
  let k = Key.of_float 0.333 in
  ignore (Overlay.insert overlay ~from:0 k "doc-a");
  ignore (Overlay.insert overlay ~from:0 k "doc-b");
  let r = Query.conjunctive overlay ~from:9 [ k; k; k ] in
  checki "every instance resolved" 3 r.Query.resolved;
  Alcotest.check (Alcotest.list Alcotest.string) "idempotent intersection"
    [ "doc-a"; "doc-b" ] r.Query.matches

let test_conjunctive_dedups_payloads () =
  (* Replicated payloads must not produce duplicate matches, and the
     result comes back sorted. *)
  let overlay, _ = build 8 in
  let k1 = Key.of_float 0.2 and k2 = Key.of_float 0.9 in
  List.iter
    (fun p ->
      ignore (Overlay.insert overlay ~from:0 k1 p);
      ignore (Overlay.insert overlay ~from:1 k2 p))
    [ "doc-z"; "doc-m"; "doc-a"; "doc-m" ];
  let r = Query.conjunctive overlay ~from:5 [ k1; k2 ] in
  Alcotest.check (Alcotest.list Alcotest.string) "sorted, deduplicated"
    [ "doc-a"; "doc-m"; "doc-z" ] r.Query.matches

(* The sort-then-merge intersection must agree with the quadratic
   pairwise [List.mem] filter it replaced, on the same searched posting
   lists: build an overlay, index random documents under random key
   sets, and compare both algorithms on random conjunctive queries. *)
let qcheck_conjunctive_merge_equiv =
  QCheck.Test.make ~name:"merge intersection = pairwise filter" ~count:30
    QCheck.small_signed_int (fun seed ->
      let rng = Rng.create ~seed in
      let keys = Distribution.generate rng Distribution.Uniform ~n:400 in
      let overlay =
        Builder.index rng ~peers:60 ~keys ~d_max:50 ~n_min:3 ~refs_per_level:2
      in
      for d = 0 to 39 do
        let doc = Printf.sprintf "doc-%03d" d in
        let n_keys = 1 + Rng.int rng 5 in
        for _ = 1 to n_keys do
          let k = keys.(Rng.int rng (Array.length keys)) in
          ignore (Overlay.insert overlay ~from:(Rng.int rng 60) k doc)
        done
      done;
      let reference query_keys ~from =
        let postings =
          List.filter_map
            (fun k ->
              let r = Overlay.search overlay ~from k in
              match r.Overlay.responsible with
              | Some _ -> Some (List.sort_uniq compare r.Overlay.payloads)
              | None -> None)
            query_keys
        in
        match postings with
        | [] -> []
        | first :: rest ->
          List.fold_left
            (fun acc l -> List.filter (fun d -> List.mem d l) acc)
            first rest
      in
      let ok = ref true in
      for _ = 1 to 20 do
        let n_keys = 1 + Rng.int rng 4 in
        let query_keys =
          List.init n_keys (fun _ -> keys.(Rng.int rng (Array.length keys)))
        in
        let from = Rng.int rng 60 in
        let expected = reference query_keys ~from in
        let got = (Query.conjunctive overlay ~from query_keys).Query.matches in
        if got <> expected then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "lookup batch" `Quick test_lookup_batch;
    Alcotest.test_case "hops ~ half path" `Quick test_lookup_hops_law;
    Alcotest.test_case "lookups under failures" `Quick test_lookup_under_failures;
    Alcotest.test_case "lookup invalid args" `Quick test_lookup_invalid;
    Alcotest.test_case "range batch" `Quick test_range_batch;
    Alcotest.test_case "range width scaling" `Quick test_range_width_scaling;
    Alcotest.test_case "range invalid args" `Quick test_range_invalid;
    Alcotest.test_case "range full width" `Quick test_range_full_width;
    Alcotest.test_case "conjunctive query" `Quick test_conjunctive;
    Alcotest.test_case "conjunctive empty" `Quick test_conjunctive_empty_keys;
    Alcotest.test_case "conjunctive skips unresolved" `Quick
      test_conjunctive_skips_unresolved;
    Alcotest.test_case "conjunctive all unresolved" `Quick
      test_conjunctive_all_unresolved;
    Alcotest.test_case "conjunctive duplicate keys" `Quick
      test_conjunctive_duplicate_keys;
    Alcotest.test_case "conjunctive payload dedup" `Quick
      test_conjunctive_dedups_payloads;
    QCheck_alcotest.to_alcotest qcheck_conjunctive_merge_equiv;
  ]
