(* Tests for Pgrid_query: batch lookup, range measurement, and the
   caching engine (Qcache + Engine). *)

module Rng = Pgrid_prng.Rng
module Key = Pgrid_keyspace.Key
module Distribution = Pgrid_workload.Distribution
module Builder = Pgrid_core.Builder
module Overlay = Pgrid_core.Overlay
module Node = Pgrid_core.Node
module Balance = Pgrid_core.Balance
module Event = Pgrid_telemetry.Event
module Query = Pgrid_query.Query
module Engine = Pgrid_query.Engine
module Qcache = Pgrid_query.Qcache
module Storm = Pgrid_query.Storm
module Sim = Pgrid_simnet.Sim
module Net = Pgrid_simnet.Net
module Latency = Pgrid_simnet.Latency
module Breaker = Pgrid_simnet.Breaker

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let build seed =
  let rng = Rng.create ~seed in
  let keys = Distribution.generate rng Distribution.Uniform ~n:1500 in
  let overlay = Builder.index rng ~peers:150 ~keys ~d_max:50 ~n_min:5 ~refs_per_level:2 in
  (overlay, keys)

let test_lookup_batch () =
  let overlay, keys = build 1 in
  let rng = Rng.create ~seed:11 in
  let s = Query.lookup_batch rng overlay ~keys ~count:300 in
  checki "all issued" 300 s.Query.issued;
  checki "all routed on a healthy overlay" 300 s.Query.routed;
  checki "all found" 300 s.Query.found;
  checkb "hops positive and bounded" true (s.Query.mean_hops >= 0. && s.Query.max_hops <= 2 * Key.bits)

let test_lookup_hops_law () =
  (* The paper observes hops ~ half the trie depth. *)
  let overlay, keys = build 2 in
  let rng = Rng.create ~seed:12 in
  let s = Query.lookup_batch rng overlay ~keys ~count:500 in
  let stats = Overlay.stats overlay in
  let expectation = stats.Overlay.mean_path_length /. 2. in
  checkb "mean hops near half the path length" true
    (Float.abs (s.Query.mean_hops -. expectation) < 1.0)

let test_lookup_under_failures () =
  (* Extra reference redundancy, as a deployment under churn would use. *)
  let rng0 = Rng.create ~seed:3 in
  let all_keys = Distribution.generate rng0 Distribution.Uniform ~n:1500 in
  let overlay =
    Builder.index rng0 ~peers:150 ~keys:all_keys ~d_max:50 ~n_min:5 ~refs_per_level:4
  in
  let keys = all_keys in
  let rng = Rng.create ~seed:13 in
  for i = 0 to Overlay.size overlay - 1 do
    if Rng.float rng < 0.15 then (Overlay.node overlay i).Node.online <- false
  done;
  let s = Query.lookup_batch rng overlay ~keys ~count:300 in
  checkb "most lookups survive failures" true (s.Query.routed > 240)

let test_lookup_invalid () =
  let overlay, _ = build 4 in
  let rng = Rng.create ~seed:14 in
  Alcotest.check_raises "no keys" (Invalid_argument "Query.lookup_batch: no keys")
    (fun () -> ignore (Query.lookup_batch rng overlay ~keys:[||] ~count:5))

let test_range_batch () =
  let overlay, _ = build 5 in
  let rng = Rng.create ~seed:15 in
  let s = Query.range_batch rng overlay ~count:50 ~width:0.05 in
  checki "ranges issued" 50 s.Query.ranges;
  checkb "visits at least one partition" true (s.Query.mean_partitions >= 1.);
  (* 5% of 1500 uniform keys is about 75 results. *)
  checkb "plausible result volume" true
    (s.Query.mean_results > 40. && s.Query.mean_results < 120.)

let test_range_width_scaling () =
  let overlay, _ = build 6 in
  let rng = Rng.create ~seed:16 in
  let narrow = Query.range_batch rng overlay ~count:40 ~width:0.02 in
  let wide = Query.range_batch rng overlay ~count:40 ~width:0.2 in
  checkb "wider ranges touch more partitions" true
    (wide.Query.mean_partitions > narrow.Query.mean_partitions);
  checkb "wider ranges return more results" true
    (wide.Query.mean_results > narrow.Query.mean_results)

let test_range_invalid () =
  let overlay, _ = build 7 in
  let rng = Rng.create ~seed:17 in
  Alcotest.check_raises "zero width" (Invalid_argument "Query.range_batch: bad width")
    (fun () -> ignore (Query.range_batch rng overlay ~count:5 ~width:0.));
  Alcotest.check_raises "width above one"
    (Invalid_argument "Query.range_batch: bad width") (fun () ->
      ignore (Query.range_batch rng overlay ~count:5 ~width:1.000001))

let test_range_full_width () =
  (* width = 1.0 is a legal full scan: every range must cover the whole
     key space and return every stored key. *)
  let overlay, keys = build 10 in
  let rng = Rng.create ~seed:18 in
  let s = Query.range_batch rng overlay ~count:10 ~width:1.0 in
  checki "ranges issued" 10 s.Query.ranges;
  let distinct =
    float_of_int (List.length (List.sort_uniq Key.compare (Array.to_list keys)))
  in
  checkb "full scans return the entire key population" true
    (s.Query.mean_results >= distinct -. 0.5)

let test_conjunctive () =
  let overlay, _ = build 8 in
  let k1 = Key.of_float 0.111 and k2 = Key.of_float 0.777 in
  ignore (Overlay.insert overlay ~from:0 k1 "doc-a");
  ignore (Overlay.insert overlay ~from:0 k1 "doc-b");
  ignore (Overlay.insert overlay ~from:0 k2 "doc-b");
  ignore (Overlay.insert overlay ~from:0 k2 "doc-c");
  let r = Query.conjunctive overlay ~from:9 [ k1; k2 ] in
  Alcotest.check (Alcotest.list Alcotest.string) "intersection" [ "doc-b" ] r.Query.matches;
  checki "both resolved" 2 r.Query.resolved;
  checkb "hops accumulated" true (r.Query.total_hops >= 0)

let test_conjunctive_empty_keys () =
  let overlay, _ = build 9 in
  Alcotest.check_raises "no keys" (Invalid_argument "Query.conjunctive: no keys")
    (fun () -> ignore (Query.conjunctive overlay ~from:0 []))

(* Take every replica of [key]'s partition offline, so lookups for it
   dead-end. *)
let darken_partition overlay key =
  let origin = ref None in
  for i = 0 to Overlay.size overlay - 1 do
    let n = Overlay.node overlay i in
    if Node.responsible_for n key then n.Node.online <- false
    else if !origin = None && n.Node.online then origin := Some i
  done;
  Option.get !origin

let test_conjunctive_skips_unresolved () =
  (* Regression: an unresolved key must be skipped, not treated as an
     empty posting list that annihilates the whole intersection. *)
  let overlay, _ = build 8 in
  let k1 = Key.of_float 0.111 and k2 = Key.of_float 0.777 in
  ignore (Overlay.insert overlay ~from:0 k1 "doc-a");
  ignore (Overlay.insert overlay ~from:0 k1 "doc-b");
  ignore (Overlay.insert overlay ~from:0 k2 "doc-b");
  let from = darken_partition overlay k2 in
  let r = Query.conjunctive overlay ~from [ k1; k2 ] in
  checki "only the live key resolved" 1 r.Query.resolved;
  Alcotest.check (Alcotest.list Alcotest.string)
    "dark partition does not annihilate the intersection" [ "doc-a"; "doc-b" ]
    r.Query.matches

let test_conjunctive_all_unresolved () =
  let overlay, _ = build 9 in
  let k = Key.of_float 0.42 in
  ignore (Overlay.insert overlay ~from:0 k "doc-a");
  let from = darken_partition overlay k in
  let r = Query.conjunctive overlay ~from [ k; k ] in
  checki "nothing resolved" 0 r.Query.resolved;
  Alcotest.check (Alcotest.list Alcotest.string) "no fabricated matches" []
    r.Query.matches

let test_conjunctive_duplicate_keys () =
  (* The same key twice is idempotent: its posting list intersected with
     itself. *)
  let overlay, _ = build 8 in
  let k = Key.of_float 0.333 in
  ignore (Overlay.insert overlay ~from:0 k "doc-a");
  ignore (Overlay.insert overlay ~from:0 k "doc-b");
  let r = Query.conjunctive overlay ~from:9 [ k; k; k ] in
  checki "every instance resolved" 3 r.Query.resolved;
  Alcotest.check (Alcotest.list Alcotest.string) "idempotent intersection"
    [ "doc-a"; "doc-b" ] r.Query.matches

let test_conjunctive_dedups_payloads () =
  (* Replicated payloads must not produce duplicate matches, and the
     result comes back sorted. *)
  let overlay, _ = build 8 in
  let k1 = Key.of_float 0.2 and k2 = Key.of_float 0.9 in
  List.iter
    (fun p ->
      ignore (Overlay.insert overlay ~from:0 k1 p);
      ignore (Overlay.insert overlay ~from:1 k2 p))
    [ "doc-z"; "doc-m"; "doc-a"; "doc-m" ];
  let r = Query.conjunctive overlay ~from:5 [ k1; k2 ] in
  Alcotest.check (Alcotest.list Alcotest.string) "sorted, deduplicated"
    [ "doc-a"; "doc-m"; "doc-z" ] r.Query.matches

(* The sort-then-merge intersection must agree with the quadratic
   pairwise [List.mem] filter it replaced, on the same searched posting
   lists: build an overlay, index random documents under random key
   sets, and compare both algorithms on random conjunctive queries. *)
let qcheck_conjunctive_merge_equiv =
  QCheck.Test.make ~name:"merge intersection = pairwise filter" ~count:30
    QCheck.small_signed_int (fun seed ->
      let rng = Rng.create ~seed in
      let keys = Distribution.generate rng Distribution.Uniform ~n:400 in
      let overlay =
        Builder.index rng ~peers:60 ~keys ~d_max:50 ~n_min:3 ~refs_per_level:2
      in
      for d = 0 to 39 do
        let doc = Printf.sprintf "doc-%03d" d in
        let n_keys = 1 + Rng.int rng 5 in
        for _ = 1 to n_keys do
          let k = keys.(Rng.int rng (Array.length keys)) in
          ignore (Overlay.insert overlay ~from:(Rng.int rng 60) k doc)
        done
      done;
      let reference query_keys ~from =
        let postings =
          List.filter_map
            (fun k ->
              let r = Overlay.search overlay ~from k in
              match r.Overlay.responsible with
              | Some _ -> Some (List.sort_uniq compare r.Overlay.payloads)
              | None -> None)
            query_keys
        in
        match postings with
        | [] -> []
        | first :: rest ->
          List.fold_left
            (fun acc l -> List.filter (fun d -> List.mem d l) acc)
            first rest
      in
      let ok = ref true in
      for _ = 1 to 20 do
        let n_keys = 1 + Rng.int rng 4 in
        let query_keys =
          List.init n_keys (fun _ -> keys.(Rng.int rng (Array.length keys)))
        in
        let from = Rng.int rng 60 in
        let expected = reference query_keys ~from in
        let got = (Query.conjunctive overlay ~from query_keys).Query.matches in
        if got <> expected then ok := false
      done;
      !ok)

(* --- Storm: asynchronous lookups over the simulated network --------------- *)

let storm_setup ?service ?(cfg = Storm.default_config) ?(loss = 0.) seed =
  let overlay, keys = build seed in
  let sim = Sim.create () in
  let net =
    Net.create ?service sim (Rng.create ~seed:(seed + 50))
      ~nodes:(Overlay.size overlay) ~latency:(Latency.Fixed 0.05) ~loss ~bucket:60.
  in
  let storm = Storm.create sim (Rng.create ~seed:(seed + 51)) overlay net cfg in
  (overlay, keys, sim, net, storm)

let test_storm_completes () =
  let _overlay, keys, sim, _net, storm = storm_setup 21 in
  let rng = Rng.create ~seed:61 in
  for _ = 1 to 200 do
    checkb "origin found" true
      (Storm.issue_random storm ~key:keys.(Rng.int rng (Array.length keys)))
  done;
  Sim.run sim;
  let s = Storm.stats storm in
  checki "all issued" 200 s.Storm.issued;
  checki "all succeed on a healthy lossless net" 200 s.Storm.succeeded;
  checki "none in flight at quiescence" 0 (Storm.in_flight storm);
  checki "completions recorded" 200 (List.length (Storm.completions storm));
  (* An origin that is itself responsible completes in the same instant,
     so latency is >= 0, not strictly positive. *)
  checkb "latency non-negative" true
    (List.for_all
       (fun c -> c.Storm.finished_at >= c.Storm.issued_at)
       (Storm.completions storm))

let test_storm_deterministic () =
  let run () =
    let _overlay, keys, sim, _net, storm = storm_setup 22 in
    let rng = Rng.create ~seed:62 in
    for _ = 1 to 100 do
      ignore (Storm.issue_random storm ~key:keys.(Rng.int rng (Array.length keys)))
    done;
    Sim.run sim;
    let s = Storm.stats storm in
    (s.Storm.succeeded, s.Storm.timeouts,
     List.map (fun c -> c.Storm.finished_at) (Storm.completions storm))
  in
  Alcotest.(check (triple int int (list (float 0.)))) "same seeds, same run"
    (run ()) (run ())

let test_storm_sheds_under_burst () =
  (* Service rate 1 msg/s against a same-instant burst: almost the whole
     burst must shed at the lone responsible replicas. *)
  let service =
    { Net.service_rate = 1.; queue_capacity = 4; query_threshold = 2 }
  in
  let _overlay, keys, sim, net, storm = storm_setup ~service 23 in
  for _ = 1 to 300 do
    ignore (Storm.issue_random storm ~key:keys.(0))
  done;
  Sim.run sim;
  let s = Storm.stats storm in
  checkb "queries shed" true (s.Storm.sheds_query > 0);
  checki "sheds all query class" s.Storm.sheds s.Storm.sheds_query;
  checkb "queue bounded" true ((Storm.stats storm).Storm.queue_peak <= 4);
  checki "net agrees" (Net.messages_shed net) s.Storm.sheds

let test_storm_hedge_dodges_dead_primary () =
  (* Kill one peer without telling the network layer's churn hooks: its
     requests time out.  With hedging the walk detours long before the
     full retry ladder (3 x 4 s backoff) elapses. *)
  let cfg =
    { Storm.default_config with hedge_after = Some 0.5; max_retries = 0 }
  in
  let overlay, keys, sim, net, storm = storm_setup ~cfg 24 in
  ignore overlay;
  (* Make every peer's first-choice reference look dead by dropping 30%
     of peers from the network (they stay "online" in the overlay, so
     routing still tries them). *)
  let rng = Rng.create ~seed:64 in
  for i = 0 to Net.nodes net - 1 do
    if Rng.float rng < 0.2 then Net.set_online net i false
  done;
  let orng = Rng.create ~seed:65 in
  let issued = ref 0 in
  for _ = 1 to 150 do
    (* Originate from peers still attached to the network. *)
    let origin = Rng.int orng (Net.nodes net) in
    if Net.online net origin then begin
      incr issued;
      Storm.issue storm ~origin ~key:keys.(Rng.int orng (Array.length keys))
    end
  done;
  Sim.run sim;
  let s = Storm.stats storm in
  checki "every lookup resolved" !issued (s.Storm.succeeded + s.Storm.failed);
  checkb "hedges launched" true (s.Storm.hedges > 0);
  checkb "some hedges won" true (s.Storm.hedge_wins > 0);
  (* With only two references per level a hop can find both choices
     dead, so demand a solid majority rather than near-perfection. *)
  checkb "most lookups still succeed" true
    (float_of_int s.Storm.succeeded >= 0.6 *. float_of_int !issued)

let test_storm_breaker_opens () =
  let cfg =
    {
      Storm.default_config with
      req_timeout = 0.5;
      max_retries = 0;
      breaker = Some { Breaker.failures = 2; cooldown = 1000. };
    }
  in
  let _overlay, keys, sim, net, storm = storm_setup ~cfg 25 in
  (* Detach a third of the peers: repeated timeouts against them must
     trip their circuits and stop the hammering. *)
  let rng = Rng.create ~seed:66 in
  for i = 0 to Net.nodes net - 1 do
    if Rng.float rng < 0.3 then Net.set_online net i false
  done;
  let orng = Rng.create ~seed:67 in
  for _ = 1 to 300 do
    let origin = Rng.int orng (Net.nodes net) in
    if Net.online net origin then
      Storm.issue storm ~origin ~key:keys.(Rng.int orng (Array.length keys))
  done;
  Sim.run sim;
  let s = Storm.stats storm in
  checkb "circuits opened" true (s.Storm.breaker_opens > 0);
  checkb "open circuits skipped on later walks" true (s.Storm.breaker_skips > 0)

let test_lookup_batch_nobody_online () =
  (* Satellite: a batch against a fully-killed overlay returns a partial
     result (zero issued) instead of hanging in rejection sampling. *)
  let overlay, keys = build 26 in
  for i = 0 to Overlay.size overlay - 1 do
    (Overlay.node overlay i).Node.online <- false
  done;
  let rng = Rng.create ~seed:68 in
  let s = Query.lookup_batch rng overlay ~keys ~count:100 in
  checki "nothing issued" 0 s.Query.issued;
  checki "nothing routed" 0 s.Query.routed;
  checki "nothing found" 0 s.Query.found;
  Alcotest.check (Alcotest.float 0.) "mean hops defined" 0. s.Query.mean_hops;
  (* And the call consumed no RNG draws, so downstream seeding is
     unaffected by the early exit. *)
  let r1 = Rng.create ~seed:69 and r2 = Rng.create ~seed:69 in
  ignore (Query.lookup_batch r1 overlay ~keys ~count:100);
  checki "no draws consumed" (Rng.int r2 1000000) (Rng.int r1 1000000)

let test_range_batch_nobody_online () =
  (* Satellite: like [test_lookup_batch_nobody_online], a range batch
     against a fully-killed overlay must report zero *issued* queries —
     the old code reported [ranges = count] — and burn no RNG draws. *)
  let overlay, _ = build 27 in
  for i = 0 to Overlay.size overlay - 1 do
    (Overlay.node overlay i).Node.online <- false
  done;
  let rng = Rng.create ~seed:70 in
  let s = Query.range_batch rng overlay ~count:50 ~width:0.1 in
  checki "nothing issued" 0 s.Query.ranges;
  Alcotest.check (Alcotest.float 0.) "mean partitions defined" 0.
    s.Query.mean_partitions;
  let r1 = Rng.create ~seed:71 and r2 = Rng.create ~seed:71 in
  ignore (Query.range_batch r1 overlay ~count:50 ~width:0.1);
  checki "no draws consumed" (Rng.int r2 1000000) (Rng.int r1 1000000)

let test_conjunctive_uneven_postings () =
  (* Regression for the decorated length sort: posting lists of very
     different lengths must still intersect correctly (the shortest
     list leads the k-way merge). *)
  let overlay, _ = build 8 in
  let k1 = Key.of_float 0.15 and k2 = Key.of_float 0.65 in
  for d = 0 to 29 do
    ignore (Overlay.insert overlay ~from:0 k1 (Printf.sprintf "doc-%02d" d))
  done;
  ignore (Overlay.insert overlay ~from:0 k2 "doc-07");
  ignore (Overlay.insert overlay ~from:0 k2 "doc-23");
  ignore (Overlay.insert overlay ~from:0 k2 "zz-not-under-k1");
  let r = Query.conjunctive overlay ~from:3 [ k1; k2 ] in
  Alcotest.check (Alcotest.list Alcotest.string) "uneven intersection"
    [ "doc-07"; "doc-23" ] r.Query.matches

(* --- Engine + Qcache: the caching query engine --------------------------- *)

let test_engine_cacheless_matches_search () =
  (* With no cache the engine must be Overlay.search exactly: same
     outcome, same hops, same RNG draws.  Two identically-seeded
     overlays keep the internal draw streams aligned. *)
  let overlay_s, keys = build 30 in
  let overlay_e, _ = build 30 in
  for i = 0 to 199 do
    let k = keys.(i mod Array.length keys) in
    let from = i mod Overlay.size overlay_s in
    let s = Overlay.search overlay_s ~from k in
    let e = Engine.lookup overlay_e ~from k in
    checkb "same responsible" true (s.Overlay.responsible = e.Engine.responsible);
    checki "same hops" s.Overlay.hops e.Engine.hops;
    checkb "same presence" true (s.Overlay.key_present = e.Engine.key_present)
  done

(* Route a key once so we know a genuine (origin, target) pair with
   origin <> target, then the cache tests can plant entries by hand. *)
let planted_pair overlay keys =
  let rec hunt i =
    if i >= Array.length keys then Alcotest.fail "no multi-hop lookup found"
    else begin
      let k = keys.(i) in
      let r = Overlay.search overlay ~from:0 k in
      match r.Overlay.responsible with
      | Some t when t <> 0 -> (k, t)
      | _ -> hunt (i + 1)
    end
  in
  hunt 0

let test_qcache_lru_eviction () =
  let overlay, keys = build 31 in
  let cache = Qcache.create ~route_cap:2 ~result_cap:2 overlay in
  for i = 0 to 19 do
    let k = keys.(i) in
    match (Overlay.search overlay ~from:0 k).Overlay.responsible with
    | Some t when t <> 0 ->
      Qcache.learn cache ~at:0 ~key:k ~target:t ~present:true ~payloads:[]
    | _ -> ()
  done;
  let s = Qcache.stats cache in
  checkb "route entries bounded by cap" true (s.Qcache.route_entries <= 2);
  checkb "result entries bounded by cap" true (s.Qcache.result_entries <= 2);
  checkb "evictions happened" true (s.Qcache.evictions > 0)

let test_qcache_invalidation_kinds () =
  let overlay, keys = build 32 in
  let cache = Qcache.create overlay in
  let k, t = planted_pair overlay keys in
  let plant () =
    Qcache.learn cache ~at:0 ~key:k ~target:t ~present:true ~payloads:[]
  in
  let probe () = Qcache.probe cache ~at:0 k in
  plant ();
  (match probe () with
  | Qcache.Hit_result { target; present; _ } ->
    checki "result hit names the planted target" t target;
    checkb "present as planted" true present
  | _ -> Alcotest.fail "expected a result hit after learn");
  (* Peer_changed retires every entry pointing at the peer. *)
  Qcache.invalidate cache (Overlay.Peer_changed t);
  (match probe () with
  | Qcache.Miss -> ()
  | _ -> Alcotest.fail "expected a miss after Peer_changed");
  (* Key_written retires the key's result entry but spares the route. *)
  plant ();
  Qcache.invalidate cache (Overlay.Key_written k);
  (match probe () with
  | Qcache.Hit_route target -> checki "route survives a key write" t target
  | _ -> Alcotest.fail "expected a route hit after Key_written");
  (* Flush retires everything. *)
  plant ();
  Qcache.invalidate cache Overlay.Flush;
  (match probe () with
  | Qcache.Miss -> ()
  | _ -> Alcotest.fail "expected a miss after Flush");
  checkb "invalidations counted" true ((Qcache.stats cache).Qcache.invalidations > 0)

let test_qcache_observe_events () =
  let overlay, keys = build 33 in
  let cache = Qcache.create overlay in
  let k, t = planted_pair overlay keys in
  let plant () =
    Qcache.learn cache ~at:0 ~key:k ~target:t ~present:true ~payloads:[]
  in
  let expect_miss label =
    match Qcache.probe cache ~at:0 k with
    | Qcache.Miss -> ()
    | _ -> Alcotest.fail ("expected a miss after " ^ label)
  in
  plant ();
  Qcache.observe cache (Event.Migrate { peer = t; level = 0; keys = 1 });
  expect_miss "Migrate";
  plant ();
  Qcache.observe cache (Event.Ref_evict { peer = 0; level = 0; target = t });
  expect_miss "Ref_evict";
  plant ();
  Qcache.observe cache
    (Event.Balance_split { path = "0"; level = 0; zeros = 1; ones = 1 });
  expect_miss "Balance_split";
  plant ();
  Qcache.observe cache (Event.Retract { path = "0"; members = 2; merged_keys = 0 });
  expect_miss "Retract";
  plant ();
  Qcache.observe cache (Event.Partition_heal { fault = "cut"; cut = 1 });
  expect_miss "Partition_heal";
  (* Unrelated events leave entries alone. *)
  plant ();
  Qcache.observe cache (Event.Query_issue { qid = 1; origin = 0 });
  (match Qcache.probe cache ~at:0 k with
  | Qcache.Hit_result _ -> ()
  | _ -> Alcotest.fail "unrelated event must not invalidate")

let test_engine_stale_fallback () =
  (* A cached target that went offline must cost a stale fallback, never
     return a wrong responsible peer. *)
  let overlay, keys = build 34 in
  let cache = Qcache.create overlay in
  let k, t = planted_pair overlay keys in
  Qcache.learn cache ~at:0 ~key:k ~target:t ~present:true ~payloads:[];
  (Overlay.node overlay t).Node.online <- false;
  let r = Engine.lookup ~cache overlay ~from:0 k in
  (match r.Engine.responsible with
  | None -> Alcotest.fail "routing must still resolve past a stale entry"
  | Some id ->
    let n = Overlay.node overlay id in
    checkb "returned peer is online" true n.Node.online;
    checkb "returned peer is responsible" true (Node.responsible_for n k));
  checkb "stale probe recorded" true (r.Engine.stale >= 1);
  checkb "stale entry evicted and counted" true
    ((Qcache.stats cache).Qcache.stale >= 1)

let test_engine_lookup_many () =
  let overlay, keys = build 35 in
  let group = Array.to_list (Array.sub keys 0 48) in
  let b = Engine.lookup_many overlay ~from:0 group in
  checki "every key resolved on a healthy overlay" 0 b.Engine.unresolved;
  checkb "shared walk beats naive per-key walks" true
    (b.Engine.messages <= b.Engine.naive_messages);
  Array.iter
    (fun item ->
      match item.Engine.bresponsible with
      | None -> Alcotest.fail "unresolved item"
      | Some t ->
        checkb "item target is responsible" true
          (Node.responsible_for (Overlay.node overlay t) item.Engine.bkey))
    b.Engine.items

(* The tentpole's correctness property: cached lookups agree with plain
   routing on responsibility and key presence before, during and after a
   balance split storm — stale entries may cost hops, never answers. *)
let qcheck_cached_agrees_under_balance_storm =
  QCheck.Test.make ~name:"cached = uncached under balance splits" ~count:10
    QCheck.small_signed_int (fun seed ->
      let rng = Rng.create ~seed in
      let keys = Distribution.generate rng Distribution.Uniform ~n:600 in
      let overlay =
        Builder.index rng ~peers:64 ~keys ~d_max:12 ~n_min:2 ~refs_per_level:2
      in
      let cache = Qcache.create overlay in
      let ok = ref true in
      let audit () =
        for _ = 1 to 30 do
          let k = keys.(Rng.int rng (Array.length keys)) in
          let from = Rng.int rng 64 in
          let r = Engine.lookup ~cache overlay ~from k in
          match r.Engine.responsible with
          | None -> ()
          | Some t ->
            let n = Overlay.node overlay t in
            if not (n.Node.online && Node.responsible_for n k) then ok := false;
            if r.Engine.key_present <> Node.has_key n k then ok := false
        done
      in
      audit ();
      let bcfg = Balance.default_config ~d_max:12 ~n_min:1 in
      for i = 1 to 4 do
        (* Skewed inserts overload the low partitions until splits fire. *)
        for j = 1 to 120 do
          let from = Rng.int rng 64 in
          if (Overlay.node overlay from).Node.online then
            ignore
              (Overlay.insert overlay ~from
                 (Key.of_float (Rng.float rng *. 0.05))
                 (Printf.sprintf "storm-%d-%d" i j))
        done;
        ignore (Balance.pass rng overlay bcfg);
        audit ()
      done;
      audit ();
      !ok)

let suite =
  [
    Alcotest.test_case "lookup batch" `Quick test_lookup_batch;
    Alcotest.test_case "hops ~ half path" `Quick test_lookup_hops_law;
    Alcotest.test_case "lookups under failures" `Quick test_lookup_under_failures;
    Alcotest.test_case "lookup invalid args" `Quick test_lookup_invalid;
    Alcotest.test_case "range batch" `Quick test_range_batch;
    Alcotest.test_case "range width scaling" `Quick test_range_width_scaling;
    Alcotest.test_case "range invalid args" `Quick test_range_invalid;
    Alcotest.test_case "range full width" `Quick test_range_full_width;
    Alcotest.test_case "conjunctive query" `Quick test_conjunctive;
    Alcotest.test_case "conjunctive empty" `Quick test_conjunctive_empty_keys;
    Alcotest.test_case "conjunctive skips unresolved" `Quick
      test_conjunctive_skips_unresolved;
    Alcotest.test_case "conjunctive all unresolved" `Quick
      test_conjunctive_all_unresolved;
    Alcotest.test_case "conjunctive duplicate keys" `Quick
      test_conjunctive_duplicate_keys;
    Alcotest.test_case "conjunctive payload dedup" `Quick
      test_conjunctive_dedups_payloads;
    Alcotest.test_case "storm completes" `Quick test_storm_completes;
    Alcotest.test_case "storm deterministic" `Quick test_storm_deterministic;
    Alcotest.test_case "storm sheds under burst" `Quick test_storm_sheds_under_burst;
    Alcotest.test_case "storm hedge dodges dead primary" `Quick
      test_storm_hedge_dodges_dead_primary;
    Alcotest.test_case "storm breaker opens" `Quick test_storm_breaker_opens;
    Alcotest.test_case "lookup batch nobody online" `Quick
      test_lookup_batch_nobody_online;
    Alcotest.test_case "range batch nobody online" `Quick
      test_range_batch_nobody_online;
    Alcotest.test_case "conjunctive uneven postings" `Quick
      test_conjunctive_uneven_postings;
    Alcotest.test_case "engine cacheless = search" `Quick
      test_engine_cacheless_matches_search;
    Alcotest.test_case "qcache lru eviction" `Quick test_qcache_lru_eviction;
    Alcotest.test_case "qcache invalidation kinds" `Quick
      test_qcache_invalidation_kinds;
    Alcotest.test_case "qcache observes events" `Quick test_qcache_observe_events;
    Alcotest.test_case "engine stale fallback" `Quick test_engine_stale_fallback;
    Alcotest.test_case "engine batched lookups" `Quick test_engine_lookup_many;
    QCheck_alcotest.to_alcotest qcheck_conjunctive_merge_equiv;
    QCheck_alcotest.to_alcotest qcheck_cached_agrees_under_balance_storm;
  ]
