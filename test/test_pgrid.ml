(* Test runner: every library contributes one suite. *)

let () =
  Alcotest.run "pgrid"
    [
      ("prng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("keyspace", Test_keyspace.suite);
      ("workload", Test_workload.suite);
      ("partition", Test_partition.suite);
      ("intset", Test_intset.suite);
      ("core", Test_core.suite);
      ("maintenance", Test_maintenance.suite);
      ("balance", Test_balance.suite);
      ("reconcile", Test_reconcile.suite);
      ("txn", Test_txn.suite);
      ("health", Test_health.suite);
      ("baseline", Test_baseline.suite);
      ("simnet", Test_simnet.suite);
      ("fault", Test_fault.suite);
      ("engine", Test_engine.suite);
      ("construction", Test_construction.suite);
      ("query", Test_query.suite);
      ("telemetry", Test_telemetry.suite);
      ("experiment", Test_experiment.suite);
    ]
