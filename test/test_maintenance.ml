(* Tests for Pgrid_core.Maintenance: graceful leaves, joins, routing
   repair and replication rebalancing. *)

module Rng = Pgrid_prng.Rng
module Key = Pgrid_keyspace.Key
module Path = Pgrid_keyspace.Path
module Distribution = Pgrid_workload.Distribution
module Node = Pgrid_core.Node
module Overlay = Pgrid_core.Overlay
module Builder = Pgrid_core.Builder
module Maintenance = Pgrid_core.Maintenance

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let build seed =
  let rng = Rng.create ~seed in
  let keys = Distribution.generate rng Distribution.Uniform ~n:1500 in
  let overlay = Builder.index rng ~peers:150 ~keys ~d_max:50 ~n_min:5 ~refs_per_level:3 in
  (overlay, keys, rng)

let test_leave_preserves_payloads () =
  let overlay, _, _ = build 1 in
  let fresh = Key.of_float 0.31337 in
  ignore (Overlay.insert overlay ~from:0 fresh "precious");
  (* The responsible peer leaves; its replicas must still answer. *)
  let r = Overlay.search overlay ~from:5 fresh in
  let owner = Option.get r.Overlay.responsible in
  let pushed = Maintenance.leave (Rng.create ~seed:77) overlay owner in
  checkb "leave reported work or replicas already had it" true (pushed >= 0);
  checkb "owner offline" true (not (Overlay.node overlay owner).Node.online);
  let r2 = Overlay.search overlay ~from:5 fresh in
  (match r2.Overlay.responsible with
  | Some id ->
    checkb "new responsible differs" true (id <> owner);
    checkb "payload survived" true (List.mem "precious" r2.Overlay.payloads)
  | None -> Alcotest.fail "search failed after one graceful leave")

let test_leave_offline_noop () =
  let overlay, _, _ = build 2 in
  (Overlay.node overlay 3).Node.online <- false;
  checki "no-op on offline node" 0 (Maintenance.leave (Rng.create ~seed:78) overlay 3)

let test_join_restores_peer () =
  let overlay, _, rng = build 3 in
  ignore (Maintenance.leave rng overlay 10);
  match Maintenance.join rng overlay 10 ~entry:0 with
  | None -> Alcotest.fail "join found no host"
  | Some hops ->
    checkb "hops counted" true (hops >= 0);
    let n = Overlay.node overlay 10 in
    checkb "online again" true n.Node.online;
    checkb "adopted a real partition" true (Path.length n.Node.path > 0);
    checkb "knows replicas" true (Node.replica_count n > 0);
    (* The group knows the newcomer back. *)
    List.iter
      (fun rid ->
        let r = Overlay.node overlay rid in
        if r.Node.online then
          checkb "registered" true (List.mem 10 (Node.replica_list r)))
      (Node.replica_list n);
    (* Store matches the adopted partition. *)
    List.iter
      (fun k -> checkb "store clean" true (Node.responsible_for n k))
      (Node.keys n)

let test_join_rejects_online () =
  let overlay, _, rng = build 4 in
  Alcotest.check_raises "online join rejected"
    (Invalid_argument "Maintenance.join: node already online") (fun () ->
      ignore (Maintenance.join rng overlay 0 ~entry:1))

let test_repair_prunes_and_fills () =
  let overlay, keys, rng = build 5 in
  (* Hard failures (no graceful handover). *)
  let victims = Rng.sample_without_replacement rng ~k:45 ~n:150 in
  Array.iter (fun id -> (Overlay.node overlay id).Node.online <- false) victims;
  let report = Maintenance.repair rng overlay ~redundancy:2 in
  checkb "dead refs pruned" true (report.Maintenance.dead_refs_dropped > 0);
  (* After repair, no online node may keep a dead reference. *)
  for i = 0 to 149 do
    let n = Overlay.node overlay i in
    if n.Node.online then
      for level = 0 to Path.length n.Node.path - 1 do
        List.iter
          (fun r -> checkb "ref alive" true (Overlay.node overlay r).Node.online)
          (Node.refs_at n ~level)
      done
  done;
  (* Searches work at healthy rates again (>92%; the exact count is
     sensitive to which redundant reference each draw lands on). *)
  let s = Pgrid_query.Query.lookup_batch rng overlay ~keys ~count:200 in
  checkb "searches recover" true (s.Pgrid_query.Query.routed > 185)

let test_rebalance_reduces_spread () =
  let overlay, _, rng = build 6 in
  (* Manufacture imbalance: move a third of the population onto one
     partition. *)
  let template = Overlay.node overlay 0 in
  let target_path = template.Node.path in
  for i = 1 to 50 do
    let n = Overlay.node overlay i in
    if not (Path.equal n.Node.path target_path) then begin
      Node.set_path n target_path;
      ignore (Node.drop_keys_outside n target_path);
      (* Adopt consistent routing for the new partition too. *)
      Node.reset_refs n ~capacity:(Path.length target_path);
      for level = 0 to Path.length target_path - 1 do
        List.iter
          (fun r -> if r <> i then Node.add_ref n ~level r)
          (Node.refs_at template ~level)
      done
    end
  done;
  let before =
    let census = Hashtbl.create 64 in
    for i = 0 to 149 do
      let p = Path.to_string (Overlay.node overlay i).Node.path in
      Hashtbl.replace census p (1 + Option.value ~default:0 (Hashtbl.find_opt census p))
    done;
    Hashtbl.fold (fun _ c acc -> max c acc) census 0
  in
  checkb "imbalance manufactured" true (before > 20);
  (* The manual moves above left stale third-party references behind;
     correction-on-use cleans them, as a deployment would. *)
  ignore (Maintenance.repair rng overlay ~redundancy:2);
  let report = Maintenance.rebalance rng overlay ~n_min:5 ~max_rounds:300 in
  checkb "migrations happened" true (report.Maintenance.migrations > 10);
  checkb "spread bounded" true (report.Maintenance.final_spread <= 3.);
  checki "no routing violations introduced" 0 (Overlay.integrity_errors overlay)

let test_rebalance_idempotent_when_balanced () =
  let overlay, _, rng = build 7 in
  let report = Maintenance.rebalance rng overlay ~n_min:5 ~max_rounds:50 in
  (* The builder output is already balanced: nothing (or nearly nothing)
     should move. *)
  checkb "few migrations on balanced overlay" true (report.Maintenance.migrations <= 5)

let test_leave_join_cycle_stability () =
  (* Forty leave/join cycles with periodic repair (the maintenance model's
     proactive pass): the overlay must stay fully routable.  Without the
     repair passes redundancy decays and a few percent of searches start
     failing — which is exactly why the maintenance model needs them. *)
  let overlay, keys, rng = build 8 in
  for cycle = 1 to 40 do
    let id = Rng.int rng 150 in
    if (Overlay.node overlay id).Node.online then begin
      ignore (Maintenance.leave rng overlay id);
      ignore
        (Maintenance.join rng overlay id
           ~entry:
             (let rec pick () =
                let e = Rng.int rng 150 in
                if e <> id && (Overlay.node overlay e).Node.online then e else pick ()
              in
              pick ()))
    end;
    if cycle mod 10 = 0 then ignore (Maintenance.repair rng overlay ~redundancy:3)
  done;
  ignore (Maintenance.repair rng overlay ~redundancy:3);
  let s = Pgrid_query.Query.lookup_batch rng overlay ~keys ~count:200 in
  checkb "overlay survives churn cycles" true (s.Pgrid_query.Query.routed > 195)

let test_repair_rebalance_deterministic () =
  (* Identical seeds must yield identical repair/rebalance trajectories
     AND identical final overlays — the iteration order of both passes
     is part of the reproducibility contract (the survival experiment
     depends on it). *)
  let run () =
    let overlay, _, _ = build 21 in
    let rng = Rng.create ~seed:99 in
    let victims = Rng.sample_without_replacement rng ~k:40 ~n:150 in
    Array.iter (fun id -> (Overlay.node overlay id).Node.online <- false) victims;
    let rep = Maintenance.repair rng overlay ~redundancy:2 in
    let reb = Maintenance.rebalance rng overlay ~n_min:5 ~max_rounds:100 in
    let fingerprint =
      String.concat ";"
        (List.init 150 (fun i ->
             let n = Overlay.node overlay i in
             Printf.sprintf "%d:%s:%d:%b" i
               (Path.to_string n.Node.path)
               (Node.key_count n) n.Node.online))
    in
    ( rep.Maintenance.dead_refs_dropped,
      rep.Maintenance.refs_added,
      reb.Maintenance.migrations,
      reb.Maintenance.final_spread,
      fingerprint )
  in
  checkb "same seed, same trajectory" true (run () = run ())

let qcheck_churn_invariants =
  QCheck.Test.make ~name:"random churn keeps partitions alive and refs valid" ~count:8
    QCheck.small_signed_int (fun seed ->
      let overlay, _, rng = build (1000 + abs seed) in
      (* A random sequence of leaves, joins and repairs. *)
      for _ = 1 to 30 do
        let id = Rng.int rng 150 in
        let n = Overlay.node overlay id in
        if n.Node.online then ignore (Maintenance.leave rng overlay id)
        else begin
          let rec entry () =
            let e = Rng.int rng 150 in
            if e <> id && (Overlay.node overlay e).Node.online then e else entry ()
          in
          ignore (Maintenance.join rng overlay id ~entry:(entry ()))
        end
      done;
      ignore (Maintenance.repair rng overlay ~redundancy:2);
      (* Invariant 1: every partition that held keys still has an online
         member covering it (no dead partitions). *)
      let covered = ref true in
      for i = 0 to 149 do
        let n = Overlay.node overlay i in
        if n.Node.online then
          List.iter
            (fun k ->
              let someone =
                let rec scan j =
                  if j >= 150 then false
                  else begin
                    let m = Overlay.node overlay j in
                    (m.Node.online && Node.responsible_for m k) || scan (j + 1)
                  end
                in
                scan 0
              in
              if not someone then covered := false)
            (Node.keys n)
      done;
      (* Invariant 2: no online peer holds a dead reference after repair. *)
      let refs_alive = ref true in
      for i = 0 to 149 do
        let n = Overlay.node overlay i in
        if n.Node.online then
          for level = 0 to Path.length n.Node.path - 1 do
            List.iter
              (fun r ->
                if not (Overlay.node overlay r).Node.online then refs_alive := false)
              (Node.refs_at n ~level)
          done
      done;
      !covered && !refs_alive)

let suite =
  [
    Alcotest.test_case "leave preserves payloads" `Quick test_leave_preserves_payloads;
    Alcotest.test_case "leave offline no-op" `Quick test_leave_offline_noop;
    Alcotest.test_case "join restores peer" `Quick test_join_restores_peer;
    Alcotest.test_case "join rejects online" `Quick test_join_rejects_online;
    Alcotest.test_case "repair prunes and fills" `Quick test_repair_prunes_and_fills;
    Alcotest.test_case "rebalance reduces spread" `Quick test_rebalance_reduces_spread;
    Alcotest.test_case "rebalance idempotent" `Quick test_rebalance_idempotent_when_balanced;
    Alcotest.test_case "leave/join cycles" `Quick test_leave_join_cycle_stability;
    Alcotest.test_case "repair/rebalance deterministic" `Quick
      test_repair_rebalance_deterministic;
    QCheck_alcotest.to_alcotest qcheck_churn_invariants;
  ]
