(* Tests for Pgrid_core.Health (typed invariant checker) and the
   self-healing maintenance daemon of Pgrid_core.Maintenance. *)

module Rng = Pgrid_prng.Rng
module Key = Pgrid_keyspace.Key
module Path = Pgrid_keyspace.Path
module Distribution = Pgrid_workload.Distribution
module Node = Pgrid_core.Node
module Overlay = Pgrid_core.Overlay
module Builder = Pgrid_core.Builder
module Health = Pgrid_core.Health
module Maintenance = Pgrid_core.Maintenance
module Sim = Pgrid_simnet.Sim
module Telemetry = Pgrid_telemetry.Telemetry
module Event = Pgrid_telemetry.Event
module Metrics = Pgrid_telemetry.Metrics

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let build seed =
  let rng = Rng.create ~seed in
  let keys = Distribution.generate rng Distribution.Uniform ~n:1500 in
  let overlay =
    Builder.index rng ~peers:150 ~keys ~d_max:50 ~n_min:5 ~refs_per_level:3
  in
  (overlay, keys)

let members overlay path =
  let acc = ref [] in
  for i = Overlay.size overlay - 1 downto 0 do
    if Path.equal (Overlay.node overlay i).Node.path path then acc := i :: !acc
  done;
  !acc

(* --- Health.check ------------------------------------------------------- *)

let test_pristine_overlay () =
  let overlay, keys = build 1 in
  let r = Health.check ~keys ~n_min:5 overlay in
  checki "no ref violations" 0 r.Health.ref_integrity;
  checki "no dark partitions" 0 r.Health.trie_incomplete;
  checki "nothing at risk" 0 r.Health.at_risk;
  checki "nothing lost" 0 r.Health.lost;
  checki "all online" 150 r.Health.online;
  checkb "score high" true (r.Health.score > 0.9);
  checkb "tracked keys cover the workload" true (r.Health.tracked_keys > 0)

let test_dark_partition_detected () =
  let overlay, keys = build 2 in
  let path = (Overlay.node overlay 0).Node.path in
  List.iter
    (fun i -> (Overlay.node overlay i).Node.online <- false)
    (members overlay path);
  let r = Health.check ~keys ~n_min:5 overlay in
  checki "one dark partition" 1 r.Health.trie_incomplete;
  checkb "its keys are at risk" true (r.Health.at_risk > 0);
  checkb "violation names the path" true
    (List.exists
       (function
         | Health.Trie_incomplete { prefix } -> prefix = Path.to_string path
         | _ -> false)
       r.Health.violations);
  let pristine, pkeys = build 2 in
  checkb "score dropped" true
    (r.Health.score < Health.score ~keys:pkeys ~n_min:5 pristine)

let test_under_replicated_detected () =
  let overlay, keys = build 3 in
  let path = (Overlay.node overlay 0).Node.path in
  (match members overlay path with
  | _keep :: rest ->
    List.iter (fun i -> (Overlay.node overlay i).Node.online <- false) rest
  | [] -> Alcotest.fail "empty partition");
  let r = Health.check ~keys ~n_min:5 overlay in
  checkb "under-replication reported for the thinned partition" true
    (List.exists
       (function
         | Health.Under_replicated { path = p; online; required } ->
           p = Path.to_string path && online = 1 && required = 5
         | _ -> false)
       r.Health.violations)

let test_lost_key_detected () =
  let overlay, keys = build 4 in
  let victim = keys.(0) in
  for i = 0 to Overlay.size overlay - 1 do
    let n = Overlay.node overlay i in
    if Node.has_key n victim then Hashtbl.remove n.Node.store victim
  done;
  let r = Health.check ~keys ~n_min:5 overlay in
  checkb "loss detected" true (r.Health.lost >= 1);
  checkb "the victim is named" true
    (List.exists
       (function
         | Health.Data_lost { key } -> Key.compare key victim = 0
         | _ -> false)
       r.Health.violations)

let test_emit_updates_gauges () =
  let overlay, keys = build 5 in
  (Overlay.node overlay 0).Node.online <- false;
  let tel = Telemetry.create () in
  let r = Health.check ~keys ~n_min:5 overlay in
  Health.emit ~telemetry:tel r;
  let report_tag =
    Event.tag
      (Event.Health_report
         {
           ref_integrity = 0;
           trie_incomplete = 0;
           under_replicated = 0;
           at_risk = 0;
           torn = 0;
           lost = 0;
           score = 1.;
         })
  in
  checki "one health report recorded" 1 (Telemetry.count_of_tag tel report_tag);
  let g name = Metrics.gauge_value (Metrics.gauge (Telemetry.metrics tel) name) in
  checkb "score gauge set" true (g "health.score" = r.Health.score);
  checkb "lost gauge set" true (g "data.lost_keys" = float_of_int r.Health.lost);
  Telemetry.close tel

(* --- Maintenance daemon -------------------------------------------------- *)

let install sim overlay keys ~seed ~until cfg =
  Maintenance.install_daemon (Rng.create ~seed) overlay
    ~keys:(fun () -> keys)
    ~schedule:(fun ~delay f -> Sim.schedule sim ~delay f)
    ~now:(fun () -> Sim.now sim)
    ~until cfg

let test_daemon_resyncs_replicas () =
  let overlay, keys = build 6 in
  (* Manufacture replica divergence: some member forgets a key that a
     mate still holds (so the pairwise exchange can restore it). *)
  let pick () =
    let rec scan i =
      if i >= Overlay.size overlay then Alcotest.fail "no replicated key found"
      else begin
        let n = Overlay.node overlay i in
        let mate_has k =
          List.exists
            (fun rid -> Node.has_key (Overlay.node overlay rid) k)
            (Node.replica_list n)
        in
        match List.filter mate_has (Node.keys n) with
        | k :: _ -> (n, k)
        | [] -> scan (i + 1)
      end
    in
    scan 0
  in
  let n, k = pick () in
  Hashtbl.remove n.Node.store k;
  let sim = Sim.create () in
  let stats =
    install sim overlay keys ~seed:9 ~until:300.
      (Maintenance.default_daemon_config ~n_min:5)
  in
  Sim.run sim;
  checkb "upkeep ticks ran" true (stats.Maintenance.ticks > 0);
  checkb "anti-entropy copied the key back" true (Node.has_key n k)

let test_daemon_rescues_dark_partition () =
  let overlay, keys = build 7 in
  (* A whole partition rides out a long churn cycle: every member
     offline, stores intact. *)
  let path = (Overlay.node overlay 0).Node.path in
  List.iter
    (fun i -> (Overlay.node overlay i).Node.online <- false)
    (members overlay path);
  let r0 = Health.check ~keys ~n_min:5 overlay in
  checki "partition dark before" 1 r0.Health.trie_incomplete;
  let sim = Sim.create () in
  let stats =
    install sim overlay keys ~seed:10 ~until:300.
      (Maintenance.default_daemon_config ~n_min:5)
  in
  Sim.run sim;
  let r1 = Health.check ~keys ~n_min:5 overlay in
  checkb "emergency re-replication fired" true (stats.Maintenance.rereplications > 0);
  checki "trie coverage restored" 0 r1.Health.trie_incomplete;
  checki "no data lost" 0 r1.Health.lost;
  checki "no keys left at risk" 0 r1.Health.at_risk

let test_daemon_deterministic () =
  let run () =
    let overlay, keys = build 8 in
    List.iter
      (fun i -> (Overlay.node overlay i).Node.online <- false)
      (members overlay (Overlay.node overlay 3).Node.path);
    let sim = Sim.create () in
    let stats =
      install sim overlay keys ~seed:11 ~until:600.
        (Maintenance.default_daemon_config ~n_min:5)
    in
    Sim.run sim;
    ( stats.Maintenance.ticks,
      stats.Maintenance.exchanges,
      stats.Maintenance.keys_synced,
      stats.Maintenance.levels_refreshed,
      stats.Maintenance.rereplications,
      Health.score ~keys ~n_min:5 overlay )
  in
  checkb "same seed, same daemon trajectory" true (run () = run ())

let suite =
  [
    Alcotest.test_case "pristine overlay" `Quick test_pristine_overlay;
    Alcotest.test_case "dark partition detected" `Quick test_dark_partition_detected;
    Alcotest.test_case "under-replication detected" `Quick
      test_under_replicated_detected;
    Alcotest.test_case "lost key detected" `Quick test_lost_key_detected;
    Alcotest.test_case "emit updates gauges" `Quick test_emit_updates_gauges;
    Alcotest.test_case "daemon resyncs replicas" `Quick test_daemon_resyncs_replicas;
    Alcotest.test_case "daemon rescues dark partition" `Quick
      test_daemon_rescues_dark_partition;
    Alcotest.test_case "daemon deterministic" `Quick test_daemon_deterministic;
  ]
